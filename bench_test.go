package abc

// The benchmark harness regenerates the paper's entire evaluation: one
// benchmark per figure/theorem experiment (E1–E14, mirrored in
// EXPERIMENTS.md and cmd/abcbench), plus performance benchmarks for the
// substrate: checker scaling, exact critical-ratio search, simulator
// throughput, and clock synchronization across system sizes. Run with
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"testing"

	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/clocksync"
	"repro/internal/cycles"
	"repro/internal/experiments"
	"repro/internal/rat"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// benchExperiment runs one paper experiment per iteration and fails the
// benchmark if any claim stops reproducing.
func benchExperiment(b *testing.B, exp func() (experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := exp()
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed() {
			for _, r := range res.Rows {
				if !r.OK {
					b.Fatalf("%s/%s: paper %q, measured %q", res.ID, r.Name, r.Paper, r.Measured)
				}
			}
		}
	}
}

func BenchmarkE01_Fig1RelevantCycle(b *testing.B)   { benchExperiment(b, experiments.E01Fig1) }
func BenchmarkE02_Fig2CycleAddition(b *testing.B)   { benchExperiment(b, experiments.E02Fig2) }
func BenchmarkE03_Fig3Timeout(b *testing.B)         { benchExperiment(b, experiments.E03Fig3) }
func BenchmarkE04_Fig4NonRelevant(b *testing.B)     { benchExperiment(b, experiments.E04Fig4) }
func BenchmarkE05_Fig5CausalCone(b *testing.B)      { benchExperiment(b, experiments.E05Fig5) }
func BenchmarkE06_Fig67LinearSystem(b *testing.B)   { benchExperiment(b, experiments.E06Fig67) }
func BenchmarkE07_Fig8ParSyncGame(b *testing.B)     { benchExperiment(b, experiments.E07Fig8) }
func BenchmarkE08_Fig9MultiHop(b *testing.B)        { benchExperiment(b, experiments.E08Fig9) }
func BenchmarkE09_Fig10FIFO(b *testing.B)           { benchExperiment(b, experiments.E09Fig10) }
func BenchmarkE10_ClockSync(b *testing.B)           { benchExperiment(b, experiments.E10ClockSync) }
func BenchmarkE11_LockStep(b *testing.B)            { benchExperiment(b, experiments.E11LockStep) }
func BenchmarkE12_ModelIndist(b *testing.B)         { benchExperiment(b, experiments.E12ModelIndist) }
func BenchmarkE13_Variants(b *testing.B)            { benchExperiment(b, experiments.E13Variants) }
func BenchmarkE14_Consensus(b *testing.B)           { benchExperiment(b, experiments.E14Consensus) }
func BenchmarkE15_VLSIClockGeneration(b *testing.B) { benchExperiment(b, experiments.RunVLSI) }

// BenchmarkFleetExperiments is the ISSUE 2 acceptance benchmark: the
// complete E1–E18 evaluation through the fleet runner, serial vs 8
// workers. Per-seed traces and experiment Rows are bit-identical across
// widths (TestRunAllWidthIndependent); the only difference is wall-clock.
// The ≥3x target at 8 workers requires ≥8 hardware threads — on a
// single-core machine (GOMAXPROCS=1) both variants measure the same
// serial execution, so read the speedup from a multicore run of
//
//	go test -bench=BenchmarkFleetExperiments -benchtime=3x .
func BenchmarkFleetExperiments(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			experiments.SetWorkers(workers)
			defer experiments.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				results, err := experiments.RunAll(context.Background(), workers)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if res.Failed() {
						b.Fatalf("%s failed", res.ID)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate performance benchmarks.

// benchSpawner is the broadcast traffic generator of the substrate
// benchmarks: one ProcessFunc shared by every process (a closure per
// process is itself a measurable allocation at sparse scale).
func benchSpawner(steps int) func(sim.ProcessID) sim.Process {
	proc := sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
		if env.StepIndex() < steps {
			env.Broadcast(env.StepIndex())
		}
	})
	return func(sim.ProcessID) sim.Process { return proc }
}

// benchGraph produces a reproducible execution graph with roughly the
// requested number of events.
func benchGraph(b *testing.B, n, steps int) *causality.Graph {
	b.Helper()
	res, err := sim.Run(sim.Config{
		N:         n,
		Spawn:     benchSpawner(steps),
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      1,
		MaxEvents: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	return causality.Build(res.Trace, causality.Options{})
}

// BenchmarkChecker measures the Bellman–Ford admissibility check across
// graph sizes (the paper's Definition 4 made O(V·E)).
func BenchmarkChecker(b *testing.B) {
	for _, size := range []struct{ n, steps int }{{4, 10}, {6, 20}, {8, 40}} {
		g := benchGraph(b, size.n, size.steps)
		name := fmt.Sprintf("nodes=%d/edges=%d", g.NumNodes(), g.NumEdges())
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := check.ABC(g, rat.FromInt(2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxRelevantRatio measures the exact Stern–Brocot critical-ratio
// search.
func BenchmarkMaxRelevantRatio(b *testing.B) {
	g := benchGraph(b, 5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := check.MaxRelevantRatio(g); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrace produces the reproducible broadcast trace behind the
// append-batch benchmarks.
func benchTrace(b *testing.B, n, steps int, maxDelay rat.Rat) *sim.Trace {
	b.Helper()
	res, err := sim.Run(sim.Config{
		N:         n,
		Spawn:     benchSpawner(steps),
		Delays:    sim.UniformDelay{Min: rat.One, Max: maxDelay},
		Seed:      1,
		MaxEvents: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.Trace
}

// BenchmarkIncrementalChecker is the append-batch workload of the
// incremental engine (DESIGN.md decision 6): a growing execution whose
// admissibility is re-decided after every chunk of new events —
// online-monitoring cadence — through check.Incremental versus batch
// recheck-from-scratch (rebuild the prefix trace and graph, re-run
// Bellman–Ford). The delay spread keeps the run admissible at Ξ = 2
// throughout, so both sides pay for the full trace — the worst case for
// the incremental engine, which can never latch early.
func BenchmarkIncrementalChecker(b *testing.B) {
	tr := benchTrace(b, 6, 30, rat.New(9, 8))
	xi := rat.FromInt(2)
	const chunk = 32
	checkpoints := (len(tr.Events) + chunk - 1) / chunk
	b.Logf("trace: %d events, %d checkpoints", len(tr.Events), checkpoints)

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shell := &sim.Trace{N: tr.N, Msgs: tr.Msgs, Faulty: tr.Faulty}
			inc, err := check.NewIncremental(shell, xi, causality.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for j := chunk; ; j += chunk {
				if j > len(tr.Events) {
					j = len(tr.Events)
				}
				shell.Events = tr.Events[:j]
				v, err := inc.Step()
				if err != nil {
					b.Fatal(err)
				}
				if !v.Admissible {
					b.Fatal("benchmark workload must stay admissible")
				}
				if j == len(tr.Events) {
					break
				}
			}
		}
		b.ReportMetric(float64(checkpoints), "checks/op")
	})
	b.Run("batch", func(b *testing.B) {
		events := make([]sim.Event, 0, len(tr.Events))
		for i := 0; i < b.N; i++ {
			for j := chunk; ; j += chunk {
				if j > len(tr.Events) {
					j = len(tr.Events)
				}
				events = append(events[:0], tr.Events[:j]...)
				sub, err := sim.Reassemble(tr.N, events, tr.Msgs, tr.Faulty)
				if err != nil {
					b.Fatal(err)
				}
				v, err := check.ABC(causality.Build(sub, causality.Options{}), xi)
				if err != nil {
					b.Fatal(err)
				}
				if !v.Admissible {
					b.Fatal("benchmark workload must stay admissible")
				}
				if j == len(tr.Events) {
					break
				}
			}
		}
		b.ReportMetric(float64(checkpoints), "checks/op")
	})
}

// BenchmarkExhaustiveVsBF is the ablation for DESIGN.md decision #1:
// enumerating cycles (Definition 4 verbatim) against the
// difference-constraint checker on the same small graph.
func BenchmarkExhaustiveVsBF(b *testing.B) {
	g := scenario.BuildFig3().Graph
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := check.Exhaustive(g, rat.FromInt(2), 100000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bellmanford", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := check.ABC(g, rat.FromInt(2)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCycleEnumeration measures raw cycle enumeration.
func BenchmarkCycleEnumeration(b *testing.B) {
	g := benchGraph(b, 4, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles.Enumerate(g, 1<<20)
	}
}

// BenchmarkSimulator measures event throughput of the discrete-event core
// across topologies, system sizes, and trace-retention modes. The sparse
// full-retention cases are the PR 6 acceptance target: events/sec at
// N=100k on a ring/torus must stay within 10x of the N=100 fully-connected
// case (per-event cost is what the CSR broadcast fast path and the
// calendar delivery queue control; total events differ by construction).
// The retain=none cases are the PR 8 scale target: with events and
// messages pooled and nothing retained, the n=1000000 ring must clear the
// PR 6 n=100000 full-retention throughput (≥ ~414k events/sec) — ten
// times the system size at no less speed. The million case keeps the bare
// "topo=ring/n=1000000" name (its retention mode is forced — a retained
// 10^7-event trace is the memory wall the mode exists to remove); the
// bounded variant at 100k carries the explicit /retain=none suffix next
// to its full-retention twin. The n=10000 ring doubles as the CI fan-out
// smoke.
func BenchmarkSimulator(b *testing.B) {
	cases := []struct {
		topo     string
		n, steps int
		sink     func() sim.Sink // nil = full retention
		tag      string
	}{
		{"full", 8, 50, nil, ""}, // the historical shape, for trajectory continuity
		{"full", 100, 5, nil, ""},
		{"ring", 10000, 3, nil, ""},
		{"ring", 100000, 3, nil, ""},
		{"torus", 100000, 3, nil, ""},
		{"ring", 100000, 3, sim.RetainNone, "/retain=none"},
		{"ring", 1000000, 3, sim.RetainNone, ""},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("topo=%s/n=%d%s", tc.topo, tc.n, tc.tag), func(b *testing.B) {
			topo, err := sim.ParseTopology(tc.topo, tc.n, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sim.Config{
				N:         tc.n,
				Spawn:     benchSpawner(tc.steps),
				Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
				Topology:  topo,
				Seed:      1,
				MaxEvents: 1 << 24,
			}
			if tc.sink != nil {
				cfg.Sink = tc.sink()
			}
			engine := sim.NewEngine()
			// One run to count events for the metrics (and to prime the
			// engine's pooled storage and high-water marks).
			warm, err := engine.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if warm.Truncated {
				b.Fatal("benchmark run truncated; raise MaxEvents")
			}
			events := warm.Trace.TotalEvents()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(events), "events/run")
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkSimulatorSharded is the PR 10 acceptance grid: the conservative
// sharded engine on the throughput workload (ring, retain=none) at shard
// counts {1, 2, 4, 8} against the serial baseline above. shards=1 takes
// the serial path through the sharded-mode gate (its cost must stay within
// noise of BenchmarkSimulator's retain=none rows); the higher counts scale
// with available cores — on a single-core host they only measure the
// window machinery's overhead, which is why BENCH_*.json records host
// metadata next to these numbers. Profile the phases with
// `go tool pprof -tags` (abc_engine / abc_shard / abc_phase labels).
func BenchmarkSimulatorSharded(b *testing.B) {
	for _, n := range []int{100000, 1000000} {
		topo, err := sim.ParseTopology("ring", n, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("topo=ring/n=%d/shards=%d", n, shards), func(b *testing.B) {
				cfg := sim.Config{
					N:         n,
					Spawn:     benchSpawner(3),
					Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
					Topology:  topo,
					Seed:      1,
					MaxEvents: 1 << 24,
					Sink:      sim.RetainNone(),
					Shards:    shards,
				}
				engine := sim.NewEngine()
				warm, err := engine.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if warm.Truncated {
					b.Fatal("benchmark run truncated; raise MaxEvents")
				}
				if shards > 1 && warm.Shards != shards {
					b.Fatalf("ran on %d shards, want %d (unexpected serial fallback)", warm.Shards, shards)
				}
				events := warm.Trace.TotalEvents()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := engine.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(events), "events/run")
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkClockSyncScale measures Algorithm 1 runs across system sizes
// (message complexity grows with n²·ticks; see EXPERIMENTS.md).
func BenchmarkClockSyncScale(b *testing.B) {
	for _, n := range []int{4, 7, 10, 13} {
		f := (n - 1) / 3
		b.Run(fmt.Sprintf("n=%d/f=%d", n, f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					N:         n,
					Spawn:     clocksync.Spawner(n, f),
					Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
					Seed:      int64(i),
					Until:     clocksync.AllReached(10, nil),
					MaxEvents: 500000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Truncated {
					b.Fatal("truncated")
				}
			}
		})
	}
}

// BenchmarkGraphBuild measures execution-graph construction.
func BenchmarkGraphBuild(b *testing.B) {
	res, err := sim.Run(sim.Config{
		N: 6,
		Spawn: func(p sim.ProcessID) sim.Process {
			return sim.ProcessFunc(func(env *sim.Env, msg sim.Message) {
				if env.StepIndex() < 30 {
					env.Broadcast(env.StepIndex())
				}
			})
		},
		Delays:    sim.UniformDelay{Min: rat.One, Max: rat.New(3, 2)},
		Seed:      1,
		MaxEvents: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		causality.Build(res.Trace, causality.Options{})
	}
}

// BenchmarkE16_RelatedModels regenerates the Section 5.2 MCM/MMR
// comparison.
func BenchmarkE16_RelatedModels(b *testing.B) { benchExperiment(b, experiments.RunRelated) }

// BenchmarkE18_CrossWorkload regenerates the registry-wide workload
// matrix: every registered source × {admissible, perturbed-inadmissible}
// through the streaming watcher, pinned against the batch checker.
func BenchmarkE18_CrossWorkload(b *testing.B) { benchExperiment(b, experiments.RunCrossWorkload) }
