// Package abc is a complete Go implementation of the Asynchronous
// Bounded-Cycle (ABC) model of Robinson and Schmid (SSS'08 best paper; full
// version in Theoretical Computer Science 412, 2011).
//
// The ABC model adds a single, entirely time-free synchrony condition to
// the asynchronous message-passing model: in the space–time diagram of an
// execution, every "relevant" cycle Z must satisfy |Z−|/|Z+| < Ξ, where
// |Z−| and |Z+| count the backward and forward messages of the cycle and
// Ξ > 1 is a rational model parameter. No message delay bounds, no step
// time bounds, no system-wide constraints — yet the condition suffices to
// implement Byzantine fault-tolerant clock synchronization, lock-step
// rounds, consensus, perfect failure detection and FIFO channels.
//
// This package is the public façade over the implementation packages:
//
//   - simulation of asynchronous message-driven systems with crash and
//     Byzantine fault injection (Simulate, Config, Process);
//   - execution graphs, consistent cuts and causal cones (BuildGraph,
//     Graph, Cut);
//   - the ABC admissibility checker with exact certificates: a violating
//     relevant cycle or a normalized delay assignment per Theorem 7
//     (Check, MaxRelevantRatio);
//   - Algorithm 1 (Byzantine clock sync) and Algorithm 2 (lock-step
//     rounds) with monitors for Theorems 1–5;
//   - consensus (EIG, Phase-King, FloodSet) on top of lock-step rounds;
//   - the Θ-Model and ParSync comparisons of Sections 4–5, the weaker
//     variants of Section 6, failure detectors, FIFO channels, and the
//     VLSI clock-generation domain of Section 5.3.
//
// # Quickstart
//
// Run Byzantine clock synchronization among n = 4 processes (f = 1) under
// adversarial delays, verify the trace is ABC-admissible for Ξ = 2, and
// check the Theorem 3 precision bound:
//
//	model := abc.MustModel(abc.NewRat(2, 1))
//	res, g, verdict, err := model.RunVerified(abc.Config{
//		N:      4,
//		Spawn:  abc.ClockSyncSpawner(4, 1),
//		Delays: abc.UniformDelay{Min: abc.NewRat(1, 1), Max: abc.NewRat(3, 2)},
//		Until:  abc.ClocksReached(20, nil),
//	})
//	// verdict.Admissible, abc.CheckRealTimePrecision(res.Trace, model.PrecisionBound()), ...
//	_, _, _, _ = res, g, verdict, err
package abc

import (
	"repro/internal/causality"
	"repro/internal/check"
	"repro/internal/clocksync"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/detector"
	"repro/internal/fifo"
	"repro/internal/lockstep"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/theta"
	"repro/internal/variants"
	"repro/internal/vlsi"
)

// Exact rational arithmetic (Ξ, times, delays).
type Rat = rat.Rat

// Rational constructors.
var (
	NewRat   = rat.New
	RatInt   = rat.FromInt
	ParseRat = rat.Parse
	MustRat  = rat.MustParse
)

// Model is the ABC model with a known, perpetually holding Ξ.
type Model = core.Model

// Model constructors and resilience helpers.
var (
	NewModel     = core.NewModel
	MustModel    = core.MustModel
	MinProcesses = core.MinProcesses
	MaxFaults    = core.MaxFaults
)

// Simulation types (internal/sim).
type (
	// Config describes one simulation run.
	Config = sim.Config
	// Process is a message-driven state machine.
	Process = sim.Process
	// ProcessFunc adapts a function to Process.
	ProcessFunc = sim.ProcessFunc
	// Env is the step interface handed to processes.
	Env = sim.Env
	// Message is a point-to-point message.
	Message = sim.Message
	// ProcessID identifies a process.
	ProcessID = sim.ProcessID
	// Trace records a finished execution.
	Trace = sim.Trace
	// TraceBuilder constructs traces by hand.
	TraceBuilder = sim.TraceBuilder
	// Fault configures crash or Byzantine behavior.
	Fault = sim.Fault
	// Wakeup is the external payload triggering first steps.
	Wakeup = sim.Wakeup
	// DelayPolicy assigns message delays.
	DelayPolicy = sim.DelayPolicy
	// ConstantDelay, UniformDelay, GrowingDelay, PerLinkDelay and
	// OverrideDelay are the built-in delay policies.
	ConstantDelay = sim.ConstantDelay
	UniformDelay  = sim.UniformDelay
	GrowingDelay  = sim.GrowingDelay
	PerLinkDelay  = sim.PerLinkDelay
	OverrideDelay = sim.OverrideDelay
	// Link is a directed process pair (for PerLinkDelay).
	Link = sim.Link
)

// Simulation entry points and fault constructors.
var (
	Simulate        = sim.Run
	NewTraceBuilder = sim.NewTraceBuilder
	Crash           = sim.Crash
	Silent          = sim.Silent
	ByzantineFault  = sim.ByzantineFault
)

// Causality types (internal/causality).
type (
	// Graph is the execution graph G_α of Definition 1.
	Graph = causality.Graph
	// GraphOptions configures graph construction.
	GraphOptions = causality.Options
	// Cut is a set of events; consistent cuts per Definition 5.
	Cut = causality.Cut
	// NodeID and EdgeID index the graph.
	NodeID = causality.NodeID
	EdgeID = causality.EdgeID
)

// BuildGraph constructs the execution graph of a trace.
func BuildGraph(t *Trace) *Graph { return causality.Build(t, causality.Options{}) }

// Cycle machinery (internal/cycles).
type (
	// Cycle is a simple cycle of the shadow graph.
	Cycle = cycles.Cycle
	// CycleClass is the Definition 3 classification.
	CycleClass = cycles.Class
)

// Cycle helpers.
var (
	EnumerateCycles = cycles.Enumerate
	ClassifyCycle   = cycles.Classify
)

// Checker types (internal/check).
type (
	// Verdict is an admissibility check outcome with certificates.
	Verdict = check.Verdict
	// Assignment is a Theorem 7 normalized delay assignment.
	Assignment = check.Assignment
)

// Checker entry points.
var (
	// Check decides ABC admissibility (Definition 4) in O(V·E).
	Check = check.ABC
	// CheckExhaustive is the enumeration-based oracle.
	CheckExhaustive = check.Exhaustive
	// MaxRelevantRatio computes the exact critical ratio.
	MaxRelevantRatio = check.MaxRelevantRatio
	// Constrained reports whether any Ξ > 1 can be violated.
	Constrained = check.Constrained
)

// Clock synchronization (Algorithm 1).
type (
	// ClockSync is an Algorithm 1 process.
	ClockSync = clocksync.Proc
	// TickMessage is Algorithm 1's message payload.
	TickMessage = clocksync.Tick
	// ClockNote is the per-event annotation used by monitors.
	ClockNote = clocksync.Note
)

// Clock synchronization constructors and Theorem 1–4 monitors.
var (
	NewClockSync              = clocksync.New
	ClockSyncSpawner          = clocksync.Spawner
	ClocksReached             = clocksync.AllReached
	CheckProgress             = clocksync.CheckProgress
	CheckMonotone             = clocksync.CheckMonotone
	CheckRealTimePrecision    = clocksync.CheckRealTimePrecision
	CheckCausalCone           = clocksync.CheckCausalCone
	CheckCutSynchrony         = clocksync.CheckConsistentCutSynchrony
	CheckBoundedProgress      = clocksync.CheckBoundedProgress
	ByzantineClockAdversaries = clocksync.Adversaries
)

// Lock-step rounds (Algorithm 2).
type (
	// App is a round-based application run over lock-step rounds.
	App = lockstep.App
	// LockStep is an Algorithm 2 process.
	LockStep = lockstep.Proc
)

// Lock-step constructors and the Theorem 5 monitor.
var (
	NewLockStep     = lockstep.New
	LockStepSpawner = lockstep.Spawner
	RoundsReached   = lockstep.AllReachedRound
	CheckLockStep   = lockstep.CheckLockStep
)

// Consensus over lock-step rounds.
type (
	// Decider is implemented by all consensus apps.
	Decider = consensus.Decider
	// ConsensusSpec checks agreement, validity, termination.
	ConsensusSpec = consensus.Spec
)

// Consensus constructors.
var (
	NewEIG          = consensus.NewEIG
	NewPhaseKing    = consensus.NewPhaseKing
	NewFloodSet     = consensus.NewFloodSet
	EIGRounds       = consensus.EIGRounds
	PhaseKingRounds = consensus.PhaseKingRounds
	FloodSetRounds  = consensus.FloodSetRounds
)

// Θ-Model checks (Section 4).
var (
	CheckThetaStatic  = theta.CheckStatic
	CheckThetaDynamic = theta.CheckDynamic
)

// ThetaReport is the result of a Θ-Model check.
type ThetaReport = theta.Report

// Weaker variants (Section 6).
type (
	// XiLearner estimates an unknown Ξ online (?ABC).
	XiLearner = variants.XiLearner
	// EventualDelays switches delay regimes at a time (◇ABC builds).
	EventualDelays = variants.EventualDelays
)

// Variant helpers.
var (
	NewXiLearner     = variants.NewXiLearner
	FindGST          = variants.FindGST
	DoublingBoundary = variants.DoublingBoundary
)

// Failure detection (Fig. 3 and Section 6).
type (
	// FailureMonitor is the Fig. 3 one-shot perfect detector.
	FailureMonitor = detector.Monitor
	// Responder answers detector queries and pings.
	Responder = detector.Responder
	// OmegaCore and OmegaFollower implement the Section 6 Ω sketch.
	OmegaCore     = detector.OmegaCore
	OmegaFollower = detector.OmegaFollower
)

// TimeoutChainLen returns ⌈2Ξ⌉, the Fig. 3 timeout chain length.
var TimeoutChainLen = detector.ChainLen

// FIFO channels over non-FIFO links (Fig. 10).
type (
	// FIFOSender, FIFOHelper, FIFOReceiver implement the Fig. 10 pattern.
	FIFOSender   = fifo.Sender
	FIFOHelper   = fifo.Helper
	FIFOReceiver = fifo.Receiver
	// FIFOItem is a data message.
	FIFOItem = fifo.Item
)

// FIFOMinChainLen returns the minimal inter-send chain length for Ξ.
var FIFOMinChainLen = fifo.MinChainLen

// VLSI Systems-on-Chip (Section 5.3).
type (
	// Chip is a placed-and-routed module system.
	Chip = vlsi.Chip
	// ClockGenReport summarizes a DARTS-style clock generation run.
	ClockGenReport = vlsi.ClockGenReport
)

// VLSI helpers.
var (
	NewChip            = vlsi.NewChip
	RunClockGeneration = vlsi.RunClockGeneration
)
